//! Counterexample replay: every hazard-claiming verifier error on the
//! test corpus must carry a witness, and every witness must replay to a
//! matching watchdog violation on **both** simulation kernels. The
//! converse is a property: random plans the verifier certifies clean
//! run with zero protocol/fairness violations under armed watchdogs on
//! both kernels.

use proptest::prelude::*;
use rcarb::analyze::replay::replay_all;
use rcarb::analyze::{analyze_plan, AnalyzeConfig, DiagCode, Severity};
use rcarb::arb::channel::ChannelMergePlan;
use rcarb::arb::insertion::{
    insert_arbiters, ArbitratedResource, ArbitrationPlan, InsertionConfig,
};
use rcarb::arb::memmap::{bind_segments, MemoryBinding};
use rcarb::board::board::Board;
use rcarb::board::presets;
use rcarb::sim::config::{SimConfig, WatchdogConfig};
use rcarb::sim::engine::SystemBuilder;
use rcarb::taskgraph::builder::TaskGraphBuilder;
use rcarb::taskgraph::program::{Expr, Op, Program};

/// One corpus scenario: a (mutated) plan plus the config it is
/// analyzed under.
struct Scenario {
    name: &'static str,
    plan: ArbitrationPlan,
    binding: MemoryBinding,
    merges: ChannelMergePlan,
    config: AnalyzeConfig,
    board: Board,
    /// Codes the scenario is designed to trip.
    expected: Vec<DiagCode>,
}

/// Hazard-claiming codes: error findings of these families predict a
/// concrete watchdog violation and must carry a replayable witness.
/// (RCA304/RCA306 are structural — a dangling reference or an
/// unsynthesizable shape has no runtime behaviour to predict.)
fn requires_witness(code: DiagCode) -> bool {
    matches!(
        code,
        DiagCode::BurstExceeded
            | DiagCode::MissingRelease
            | DiagCode::NestedHold
            | DiagCode::UnguardedAccess
            | DiagCode::AwaitWithoutRequest
            | DiagCode::DeadlockCycle
            | DiagCode::FairnessRefuted
    )
}

/// Two tasks bursting `accesses` writes each into segments sharing
/// duo_small's one bank, transformed with burst window `m`.
fn contended(m: u32, accesses: u64) -> (ArbitrationPlan, MemoryBinding, ChannelMergePlan, Board) {
    let mut b = TaskGraphBuilder::new("corpus");
    let m1 = b.segment("M1", 256, 16);
    let m2 = b.segment("M2", 256, 16);
    for (name, seg) in [("T1", m1), ("T2", m2)] {
        b.task(
            name,
            Program::build(move |p| {
                for i in 0..accesses {
                    p.mem_write(seg, Expr::lit(i), Expr::lit(i));
                }
            }),
        );
    }
    let graph = b.finish().unwrap();
    let board = presets::duo_small();
    let binding = bind_segments(graph.segments(), &board, &|_| None).unwrap();
    let merges = ChannelMergePlan::default();
    let plan = insert_arbiters(
        &graph,
        &binding,
        &merges,
        &InsertionConfig::paper().with_max_burst(m),
    );
    (plan, binding, merges, board)
}

fn strip_releases(ops: &[Op]) -> Vec<Op> {
    ops.iter()
        .filter(|op| !matches!(op, Op::ReqDeassert { .. }))
        .cloned()
        .collect()
}

fn corpus() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // 1. Stripped release: T1 camps on the arbiter forever.
    {
        let (mut plan, binding, merges, board) = contended(2, 4);
        let t1 = plan.graph.task_by_name("T1").unwrap().id();
        let stripped = Program::from_ops(strip_releases(plan.graph.task(t1).program().ops()));
        plan.graph.task_mut(t1).set_program(stripped);
        scenarios.push(Scenario {
            name: "stripped-release",
            plan,
            binding,
            merges,
            config: AnalyzeConfig::default(),
            board,
            expected: vec![DiagCode::MissingRelease, DiagCode::NestedHold],
        });
    }

    // 2. Raw access: T1's protocol ops removed entirely, arbiter kept.
    {
        let (mut plan, binding, merges, board) = contended(2, 4);
        let t1 = plan.graph.task_by_name("T1").unwrap().id();
        let seg = plan.graph.segments()[0].id();
        plan.graph.task_mut(t1).set_program(Program::build(|p| {
            for i in 0..4 {
                p.mem_write(seg, Expr::lit(i), Expr::lit(i));
            }
        }));
        scenarios.push(Scenario {
            name: "raw-access",
            plan,
            binding,
            merges,
            config: AnalyzeConfig::default(),
            board,
            expected: vec![DiagCode::UnguardedAccess],
        });
    }

    // 3. Overlong burst: transformed for M = 4, certified against M = 2.
    {
        let (plan, binding, merges, board) = contended(4, 4);
        scenarios.push(Scenario {
            name: "overlong-burst",
            plan,
            binding,
            merges,
            config: AnalyzeConfig::default().with_max_burst(2),
            board,
            expected: vec![DiagCode::BurstExceeded, DiagCode::FairnessRefuted],
        });
    }

    // 4. Cross-order deadlock: two arbiters acquired in opposite order.
    {
        let mut b = TaskGraphBuilder::new("dl");
        let m1 = b.segment("M1", 64, 16);
        let m2 = b.segment("M2", 64, 16);
        let mk = |p: &mut rcarb::taskgraph::program::ProgramBuilder| {
            p.mem_write(m1, Expr::lit(0), Expr::lit(1));
            p.mem_write(m2, Expr::lit(0), Expr::lit(1));
        };
        let t1 = b.task("T1", Program::build(mk));
        let t2 = b.task("T2", Program::build(mk));
        let graph = b.finish().unwrap();
        let board = presets::quad_large();
        let binding = bind_segments(graph.segments(), &board, &|_| None).unwrap();
        let merges = ChannelMergePlan::default();
        let mut plan = insert_arbiters(&graph, &binding, &merges, &InsertionConfig::paper());
        let arb_of = |plan: &ArbitrationPlan, seg| {
            plan.arbiter_for(ArbitratedResource::Bank(binding.bank_of(seg).unwrap()))
                .unwrap()
                .id
        };
        let (a1, a2) = (arb_of(&plan, m1), arb_of(&plan, m2));
        let hold_both = |first, second, seg1, seg2| {
            Program::from_ops(vec![
                Op::ReqAssert { arbiter: first },
                Op::AwaitGrant { arbiter: first },
                Op::MemWrite {
                    segment: seg1,
                    addr: Expr::lit(0),
                    value: Expr::lit(1),
                },
                Op::ReqAssert { arbiter: second },
                Op::AwaitGrant { arbiter: second },
                Op::MemWrite {
                    segment: seg2,
                    addr: Expr::lit(0),
                    value: Expr::lit(1),
                },
                Op::ReqDeassert { arbiter: second },
                Op::ReqDeassert { arbiter: first },
            ])
        };
        plan.graph
            .task_mut(t1)
            .set_program(hold_both(a1, a2, m1, m2));
        plan.graph
            .task_mut(t2)
            .set_program(hold_both(a2, a1, m2, m1));
        scenarios.push(Scenario {
            name: "cross-order-deadlock",
            plan,
            binding,
            merges,
            config: AnalyzeConfig::default(),
            board,
            expected: vec![DiagCode::DeadlockCycle, DiagCode::NestedHold],
        });
    }

    scenarios
}

#[test]
fn every_corpus_error_carries_a_witness_that_replays_on_both_kernels() {
    for s in corpus() {
        let report = analyze_plan(&s.plan, &s.binding, &s.merges, &s.config);
        assert!(!report.is_clean(), "{}: expected errors", s.name);
        for code in &s.expected {
            assert!(
                report.has_code(*code),
                "{}: missing {code}\n{}",
                s.name,
                report.render_text()
            );
        }

        // Every hazard-claiming error carries a witness.
        let hazard_errors: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == Severity::Error && requires_witness(d.code))
            .collect();
        assert!(!hazard_errors.is_empty(), "{}: no hazard errors", s.name);
        for d in &hazard_errors {
            assert!(
                d.witness.is_some(),
                "{}: {} at {} has no witness",
                s.name,
                d.code,
                d.location
            );
        }

        // And every witness replays to the predicted violation on both
        // kernels.
        let outcomes = replay_all(
            &s.plan,
            &s.binding,
            &s.merges,
            &s.config,
            &s.board,
            hazard_errors.iter().copied(),
        )
        .unwrap_or_else(|e| panic!("{}: replay build failed: {e}", s.name));
        assert_eq!(outcomes.len(), hazard_errors.len(), "{}", s.name);
        for o in &outcomes {
            assert!(
                o.confirmed(),
                "{}: {} at {} expecting {} — event={} legacy={}",
                s.name,
                o.code,
                o.location,
                o.expect,
                o.event_confirmed,
                o.legacy_confirmed
            );
        }
    }
}

/// A random contending design in the style of `protocol_props`: each
/// task owns a segment (all sharing duo_small's bank) and runs a random
/// access/compute pattern.
fn random_design(num_tasks: usize, patterns: &[Vec<u8>]) -> rcarb::taskgraph::graph::TaskGraph {
    let mut b = TaskGraphBuilder::new("random");
    let segs: Vec<_> = (0..num_tasks)
        .map(|i| b.segment(format!("M{i}"), 64, 16))
        .collect();
    for (i, &seg) in segs.iter().enumerate() {
        let pattern = patterns[i].clone();
        b.task(
            format!("T{i}"),
            Program::build(move |p| {
                for (k, &op) in pattern.iter().enumerate() {
                    match op % 4 {
                        0 => p.mem_write(seg, Expr::lit(k as u64 % 64), Expr::lit(u64::from(op))),
                        1 => {
                            let _ = p.mem_read(seg, Expr::lit(k as u64 % 64));
                        }
                        2 => p.compute(u32::from(op % 5) + 1),
                        _ => {
                            let v = p.let_(Expr::lit(u64::from(op)));
                            p.set(v, Expr::add(Expr::var(v), Expr::lit(1)));
                        }
                    }
                }
            }),
        );
    }
    b.finish().expect("valid random design")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The converse of replay: a plan the verifier certifies clean runs
    /// with zero violations under fully armed watchdogs, on both
    /// kernels. (The generator is the deterministic vendored shim, so
    /// all 200 plans are reproducible.)
    #[test]
    fn certified_clean_plans_have_zero_violations(
        num_tasks in 2usize..=5,
        seed_patterns in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 1..24),
            5,
        ),
        m in 1u32..=4,
        retry_sel in 0u8..=1,
    ) {
        let retry = retry_sel == 1;
        let graph = random_design(num_tasks, &seed_patterns);
        let board = presets::duo_small();
        let binding = bind_segments(graph.segments(), &board, &|_| None).expect("binds");
        let merges = ChannelMergePlan::default();
        let mut insertion = InsertionConfig::paper().with_max_burst(m);
        if retry {
            insertion = insertion.with_retry(rcarb::arb::transform::RetryPolicy::new(64, 3, 16));
        }
        let plan = insert_arbiters(&graph, &binding, &merges, &insertion);

        let config = AnalyzeConfig::default().with_max_burst(m).with_netlist_lints(false);
        let report = analyze_plan(&plan, &binding, &merges, &config);
        prop_assert!(report.is_clean(), "verifier rejected a transformed plan:\n{}", report.render_text());

        // The derived (N-1)(M+2)+2 fairness bound plus grant/progress
        // watchdogs: nothing may fire on a certified plan.
        let n = plan.arbiters.iter().map(|a| a.inputs).max().unwrap_or(2) as u64;
        let watchdog = WatchdogConfig::none()
            .with_grant_timeout(((n.max(2) - 1) * (u64::from(m) + 2) + 16).max(64))
            .with_progress_bound(256)
            .with_fairness_m(m);
        for legacy in [false, true] {
            let mut sys = SystemBuilder::from_plan(&plan, &binding, &merges)
                .with_config(
                    SimConfig::new()
                        .with_watchdog(watchdog)
                        .with_legacy_kernel(legacy),
                )
                .try_build(&board)
                .unwrap();
            let run = sys.run(1_000_000);
            prop_assert!(run.completed, "legacy={legacy}: did not terminate");
            prop_assert!(
                run.violations.is_empty(),
                "legacy={legacy}: {:?}",
                run.violations
            );
        }
    }
}
