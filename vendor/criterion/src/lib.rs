//! A minimal, dependency-free benchmarking shim exposing the subset of the
//! `criterion` API this workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing is wall-clock via [`std::time::Instant`] with a fixed warm-up,
//! and results are printed as mean time per iteration (plus throughput
//! when configured). There is no statistical analysis, HTML report, or
//! baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` if they want; the
/// workspace's benches import it from `std::hint` directly.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 10, None, f);
        self
    }
}

/// Units processed per iteration, for derived throughput output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finishes the group (reporting happens per-benchmark, so this is a
    /// no-op beyond consuming the group).
    pub fn finish(self) {}
}

/// A function + parameter benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an id with only a parameter component.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            f.write_str(&self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// The timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth out clock
    /// granularity.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up and calibration: find an iteration count that takes a
    // measurable amount of time without dragging the run out.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean_ns = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {} elem/s", human_rate(n as f64 / (mean_ns * 1e-9))),
        Throughput::Bytes(n) => format!(", {} B/s", human_rate(n as f64 / (mean_ns * 1e-9))),
    });
    println!(
        "  {label}: mean {} / iter, best {} ({} samples x {} iters{})",
        human_time(mean_ns),
        human_time(best_ns),
        samples,
        iters,
        rate.unwrap_or_default()
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec < 1e3 {
        format!("{per_sec:.0}")
    } else if per_sec < 1e6 {
        format!("{:.1}K", per_sec / 1e3)
    } else if per_sec < 1e9 {
        format!("{:.1}M", per_sec / 1e6)
    } else {
        format!("{:.2}G", per_sec / 1e9)
    }
}

/// Collects benchmark functions into a runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running the given groups (benches use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn macros_and_timing_loop_run() {
        benches();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
