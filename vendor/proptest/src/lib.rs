//! A minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` API this workspace uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, integer/float range and collection
//! strategies, `Just`/`any`/`prop_oneof`, and the `proptest!` /
//! `prop_assert*` macros.
//!
//! Generation is driven by a deterministic xorshift generator seeded from
//! the test's module path and name, so failures reproduce exactly. There
//! is no shrinking: a failing case reports its case number and the
//! assertion message.

pub mod test_runner {
    use std::error::Error;
    use std::fmt;

    /// Why a test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failed assertion or invariant.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }

        /// A rejected (discarded) case; the shim treats it as a failure so
        /// silent mass-rejection cannot hide an empty test.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self {
                msg: format!("rejected: {}", msg.into()),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl Error for TestCaseError {}

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// The case count the runner actually uses: the configured
        /// `cases`, unless the `RCARB_TEST_SEEDS` environment variable
        /// holds a positive integer — the fleet/CI scaling knob shared
        /// by every seeded suite in the workspace. Unset, empty, or
        /// unparsable values leave the default unchanged.
        pub fn resolved_cases(&self) -> u32 {
            match rcarb_test_seeds() {
                Some(n) => u32::try_from(n).unwrap_or(u32::MAX),
                None => self.cases,
            }
        }
    }

    /// Parses the workspace-wide `RCARB_TEST_SEEDS` override: the seed
    /// count every scaled suite (proptest cases, directed seed loops,
    /// the chaos suite) runs with. Returns `None` when unset, empty, or
    /// not a positive integer, so defaults stay untouched.
    pub fn rcarb_test_seeds() -> Option<u64> {
        std::env::var("RCARB_TEST_SEEDS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator; a zero seed is remapped to a fixed
        /// constant (xorshift has a zero fixpoint).
        pub fn new(seed: u64) -> Self {
            Self {
                state: if seed == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    seed
                },
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// A uniform value in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n` is zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample an empty range");
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % n
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a over a string, used to derive per-test seeds.
    pub fn fnv(text: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then draws from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; used by `prop_oneof!`.
        ///
        /// # Panics
        ///
        /// Panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }

        /// Boxes one alternative; used by `prop_oneof!`.
        pub fn boxed_item(s: impl Strategy<Value = T> + 'static) -> BoxedStrategy<T> {
            Box::new(s)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($ty:ty),+) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let lo = self.start as i128;
                        let hi = self.end as i128;
                        assert!(lo < hi, "empty range strategy {lo}..{hi}");
                        let width = (hi - lo) as u128;
                        let draw = u128::from(rng.next_u64()) % width;
                        (lo + draw as i128) as $ty
                    }
                }

                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let lo = *self.start() as i128;
                        let hi = *self.end() as i128;
                        assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                        let width = (hi - lo) as u128 + 1;
                        let draw = u128::from(rng.next_u64()) % width;
                        (lo + draw as i128) as $ty
                    }
                }
            )+
        };
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty float range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 != 0
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),+) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            )+
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{rcarb_test_seeds, ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each inner `fn name(arg in strategy, ...)` body
/// runs `cases` times with freshly generated arguments; `prop_assert*`
/// failures abort the case with a message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let seed = $crate::test_runner::fnv(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&{ $strat }, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the surrounding proptest case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` vs `{:?}`)", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed_item($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 2usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn composite_strategies_compose(
            v in crate::collection::vec((0u8..5, any::<bool>()), 1..6),
            pick in prop_oneof![Just(1u32), Just(2u32)],
            n in (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(n), n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&(a, _)| a < 5));
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(n.len(), n[0]);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
