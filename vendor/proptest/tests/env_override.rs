//! Smoke test for the fleet-wide `RCARB_TEST_SEEDS` override: one env
//! var scales every seeded suite (proptest case counts, the chaos
//! suite's seed loops) up or down without touching defaults.
//!
//! All assertions live in a single `#[test]` because they mutate
//! process-global environment state; splitting them across tests would
//! race under the parallel test runner.

use proptest::test_runner::{rcarb_test_seeds, ProptestConfig};
use std::sync::atomic::{AtomicU32, Ordering};

static RUNS: AtomicU32 = AtomicU32::new(0);

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Counts how many cases the runner actually executes; the smoke
    /// test below invokes this directly (no `#[test]` attribute, so the
    /// harness never runs it concurrently and races the counter).
    fn counting_case(_x in 0u8..=255) {
        RUNS.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn rcarb_test_seeds_scales_every_seeded_suite() {
    // Unset: defaults untouched.
    std::env::remove_var("RCARB_TEST_SEEDS");
    assert_eq!(rcarb_test_seeds(), None);
    assert_eq!(ProptestConfig::with_cases(24).resolved_cases(), 24);
    assert_eq!(ProptestConfig::default().resolved_cases(), 64);

    // Garbage or non-positive values: also defaults.
    for bad in ["", "  ", "zero", "-3", "0", "1.5"] {
        std::env::set_var("RCARB_TEST_SEEDS", bad);
        assert_eq!(rcarb_test_seeds(), None, "`{bad}` must not override");
        assert_eq!(ProptestConfig::with_cases(24).resolved_cases(), 24);
    }

    // A positive integer overrides every configured count, up or down.
    std::env::set_var("RCARB_TEST_SEEDS", "3");
    assert_eq!(rcarb_test_seeds(), Some(3));
    assert_eq!(ProptestConfig::with_cases(24).resolved_cases(), 3);
    assert_eq!(ProptestConfig::default().resolved_cases(), 3);
    std::env::set_var("RCARB_TEST_SEEDS", " 500 ");
    assert_eq!(rcarb_test_seeds(), Some(500));
    assert_eq!(ProptestConfig::with_cases(1).resolved_cases(), 500);

    // And the proptest macro honours it end to end: re-run the counting
    // test with an override and watch the case count change.
    std::env::set_var("RCARB_TEST_SEEDS", "2");
    RUNS.store(0, Ordering::Relaxed);
    counting_case();
    assert_eq!(
        RUNS.load(Ordering::Relaxed),
        2,
        "the macro must run exactly the overridden number of cases"
    );

    std::env::remove_var("RCARB_TEST_SEEDS");
    RUNS.store(0, Ordering::Relaxed);
    counting_case();
    assert_eq!(
        RUNS.load(Ordering::Relaxed),
        5,
        "without the override the configured case count is unchanged"
    );
}
